package mem

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

// testRig wires an engine, Alewife-calibrated mesh, clock, store, and
// memory system for 32 nodes.
type testRig struct {
	eng *sim.Engine
	net *mesh.Network
	clk sim.Clock
	st  *Store
	sys *System
}

func newRig() *testRig {
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	st := NewStore(32)
	sys := NewSystem(eng, net, clk, DefaultParams(), st)
	return &testRig{eng: eng, net: net, clk: clk, st: st, sys: sys}
}

// run spawns one thread per body at t=0 and runs to completion, then
// checks the directory/cache invariants at quiescence. Every protocol
// scenario in this package therefore doubles as an invariant test.
func (r *testRig) run(bodies ...func(th *sim.Thread)) {
	for i, b := range bodies {
		b := b
		r.eng.Spawn("t", sim.Time(i)*0, func(th *sim.Thread) { b(th) })
	}
	r.eng.SetEventLimit(50_000_000)
	r.eng.Run()
	if err := r.sys.CheckInvariants(true); err != nil {
		panic(err)
	}
}

// cycles measures the elapsed cycles of fn inside a thread.
func (r *testRig) cycles(th *sim.Thread, fn func()) float64 {
	start := th.Now()
	fn()
	return r.clk.ToCyclesF(th.Now() - start)
}

func TestStoreAllocHomePeekPoke(t *testing.T) {
	st := NewStore(32)
	a := st.Alloc(3, 10)
	if st.Home(a) != 3 {
		t.Errorf("Home = %d, want 3", st.Home(a))
	}
	st.Poke(a+5, 42.5)
	if st.Peek(a+5) != 42.5 {
		t.Errorf("Peek = %v, want 42.5", st.Peek(a+5))
	}
	b := st.Alloc(3, 3) // odd size forces alignment of next alloc
	c := st.Alloc(3, 2)
	if LineOf(b+2, 2) == LineOf(c, 2) {
		t.Error("allocations share a cache line")
	}
}

func TestStoreAllocPanics(t *testing.T) {
	st := NewStore(4)
	for _, f := range []func(){
		func() { st.Alloc(-1, 8) },
		func() { st.Alloc(4, 8) },
		func() { st.Alloc(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Alloc did not panic")
				}
			}()
			f()
		}()
	}
}

func TestLocalMissThenHit(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(0, 2)
	var missCyc, hitCyc float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		missCyc = r.cycles(th, func() { r.sys.Load(th, 0, a, &bd, stats.BucketMemWait) })
		hitCyc = r.cycles(th, func() { r.sys.Load(th, 0, a, &bd, stats.BucketMemWait) })
	})
	if missCyc < 8 || missCyc > 20 {
		t.Errorf("local miss = %.1f cycles, want ~11", missCyc)
	}
	if hitCyc > 2 {
		t.Errorf("hit = %.1f cycles, want ~1", hitCyc)
	}
	ev := r.sys.Events()
	if ev.LocalMisses != 1 {
		t.Errorf("LocalMisses = %d, want 1", ev.LocalMisses)
	}
}

func TestRemoteCleanReadLatency(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(5, 2) // home (5,0): 5 hops from node 0
	r.st.Poke(a, 7.0)
	var cyc float64
	var got float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		cyc = r.cycles(th, func() { got = r.sys.Load(th, 0, a, &bd, stats.BucketMemWait) })
	})
	if got != 7.0 {
		t.Errorf("loaded %v, want 7", got)
	}
	// Paper: ~42 cycles + 1.6/hop; at 5 hops expect ~40-55.
	if cyc < 30 || cyc > 60 {
		t.Errorf("remote clean read = %.1f cycles, want ~42", cyc)
	}
	ev := r.sys.Events()
	if ev.RemoteMissesCln != 1 {
		t.Errorf("RemoteMissesCln = %d, want 1", ev.RemoteMissesCln)
	}
	if bd.T[stats.BucketMemWait] == 0 {
		t.Error("remote miss charged no memory wait")
	}
}

func TestRemoteDirtyReadThreeParty(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(4, 2) // home 4
	var dirtyCyc float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		// Node 2 writes (becomes owner), then node 0 reads: 3-party.
		r.sys.StoreWord(th, 2, a, 9.0, &bd, stats.BucketMemWait)
		dirtyCyc = r.cycles(th, func() {
			if v := r.sys.Load(th, 0, a, &bd, stats.BucketMemWait); v != 9.0 {
				t.Errorf("dirty read got %v, want 9", v)
			}
		})
	})
	if dirtyCyc < 50 || dirtyCyc > 110 {
		t.Errorf("3-party dirty read = %.1f cycles, want ~63-85", dirtyCyc)
	}
	if r.sys.Events().RemoteMissesDty != 1 {
		t.Errorf("RemoteMissesDty = %d, want 1", r.sys.Events().RemoteMissesDty)
	}
}

func TestWriteInvalidatesReaders(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(1, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.Load(th, 0, a, &bd, stats.BucketMemWait) // 0 caches S
		r.sys.Load(th, 2, a, &bd, stats.BucketMemWait) // 2 caches S
		if !r.sys.CacheHas(0, a) || !r.sys.CacheHas(2, a) {
			t.Fatal("readers did not cache the line")
		}
		r.sys.StoreWord(th, 3, a, 1.0, &bd, stats.BucketMemWait) // invalidates 0 and 2
		if r.sys.CacheHas(0, a) || r.sys.CacheHas(2, a) {
			t.Error("write did not invalidate cached readers")
		}
		if v := r.sys.Load(th, 0, a, &bd, stats.BucketMemWait); v != 1.0 {
			t.Errorf("read-after-invalidate got %v, want 1", v)
		}
	})
	ev := r.sys.Events()
	if ev.Invalidations != 2 {
		t.Errorf("Invalidations = %d, want 2", ev.Invalidations)
	}
}

func TestProducerConsumerMessagePattern(t *testing.T) {
	// The paper (§5.1): communicating one value through shared memory
	// with an invalidation protocol takes at least four messages. Measure
	// traffic for a steady-state producer->consumer handoff.
	r := newRig()
	a := r.st.Alloc(4, 2) // home 4, producer 1, consumer 2: all distinct
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		// Warm up: consumer holds S copy, producer re-acquires M.
		r.sys.StoreWord(th, 1, a, 1.0, &bd, stats.BucketMemWait)
		r.sys.Load(th, 2, a, &bd, stats.BucketMemWait)
		before := r.net.Volume()
		beforeInval := r.sys.Events().Invalidations
		// Steady-state round: produce, consume.
		r.sys.StoreWord(th, 1, a, 2.0, &bd, stats.BucketMemWait)
		r.sys.Load(th, 2, a, &bd, stats.BucketMemWait)
		vol := r.net.Volume()
		delta := vol.Total() - before.Total()
		// Producer upgrade: req(8) + inval(8) + ack(8) + data reply(24);
		// consumer read: req(8) + fetch(8) + wb data(24) + data(24).
		if delta < 80 || delta > 130 {
			t.Errorf("steady-state handoff moved %d bytes, want ~112 (>=4 msgs/value)", delta)
		}
		if r.sys.Events().Invalidations-beforeInval < 1 {
			t.Error("handoff produced no invalidations")
		}
	})
}

func TestRMWAtomicityAcrossNodes(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(0, 2)
	const perNode = 50
	bodies := make([]func(*sim.Thread), 8)
	bds := make([]stats.Breakdown, 8)
	for i := range bodies {
		node := i * 4
		bd := &bds[i]
		bodies[i] = func(th *sim.Thread) {
			for k := 0; k < perNode; k++ {
				r.sys.RMW(th, node, a, func(v float64) float64 { return v + 1 }, bd, stats.BucketSync)
			}
		}
	}
	r.run(bodies...)
	if got := r.st.Peek(a); got != float64(8*perNode) {
		t.Errorf("concurrent RMW total = %v, want %d", got, 8*perNode)
	}
}

func TestLimitLESSTrap(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(0, 2)
	var bd stats.Breakdown
	var overflowCyc float64
	r.run(func(th *sim.Thread) {
		// 5 sharers fit in hardware; the 6th read traps.
		for n := 1; n <= 5; n++ {
			r.sys.Load(th, n, a, &bd, stats.BucketMemWait)
		}
		if r.sys.Events().LimitLESSTraps != 0 {
			t.Fatalf("trapped before overflow: %d", r.sys.Events().LimitLESSTraps)
		}
		overflowCyc = r.cycles(th, func() { r.sys.Load(th, 6, a, &bd, stats.BucketMemWait) })
	})
	if r.sys.Events().LimitLESSTraps != 1 {
		t.Errorf("LimitLESSTraps = %d, want 1", r.sys.Events().LimitLESSTraps)
	}
	// Paper: software-handled read ~425 cycles vs ~42 hardware.
	if overflowCyc < 300 || overflowCyc > 550 {
		t.Errorf("LimitLESS read = %.1f cycles, want ~425", overflowCyc)
	}
}

func TestPrefetchHidesLatency(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(7, 2)
	r.st.Poke(a, 3.0)
	var bd stats.Breakdown
	var cyc float64
	r.run(func(th *sim.Thread) {
		r.sys.Prefetch(0, a, false)
		th.Sleep(r.clk.Cycles(200)) // plenty of time for the fill
		cyc = r.cycles(th, func() {
			if v := r.sys.Load(th, 0, a, &bd, stats.BucketMemWait); v != 3.0 {
				t.Errorf("prefetched load got %v, want 3", v)
			}
		})
	})
	if cyc > 6 {
		t.Errorf("prefetched load = %.1f cycles, want ~3 (buffer hit)", cyc)
	}
	ev := r.sys.Events()
	if ev.PrefetchIssued != 1 || ev.PrefetchUseful != 1 {
		t.Errorf("prefetch counters = %+v, want issued=1 useful=1", ev)
	}
}

func TestPrefetchJoinedByDemandCountsUseful(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(7, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.Prefetch(0, a, false)
		// Demand load immediately: joins the in-flight prefetch.
		r.sys.Load(th, 0, a, &bd, stats.BucketMemWait)
	})
	ev := r.sys.Events()
	if ev.PrefetchUseful != 1 {
		t.Errorf("PrefetchUseful = %d, want 1 (demand join)", ev.PrefetchUseful)
	}
}

func TestUselessPrefetchesEvicted(t *testing.T) {
	r := newRig()
	par := DefaultParams()
	addrs := make([]Addr, par.PrefetchEntries+4)
	for i := range addrs {
		addrs[i] = r.st.Alloc(1, 2)
	}
	r.run(func(th *sim.Thread) {
		for _, a := range addrs {
			r.sys.Prefetch(0, a, false)
			th.Sleep(r.clk.Cycles(100))
		}
	})
	ev := r.sys.Events()
	if ev.PrefetchUseless != 4 {
		t.Errorf("PrefetchUseless = %d, want 4 (FIFO overflow)", ev.PrefetchUseless)
	}
}

func TestWritePrefetchGrantsOwnership(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(6, 2)
	var bd stats.Breakdown
	var cyc float64
	r.run(func(th *sim.Thread) {
		r.sys.Prefetch(0, a, true)
		th.Sleep(r.clk.Cycles(200))
		cyc = r.cycles(th, func() {
			r.sys.StoreWord(th, 0, a, 5.0, &bd, stats.BucketMemWait)
		})
	})
	if cyc > 6 {
		t.Errorf("write after write-prefetch = %.1f cycles, want ~3", cyc)
	}
	if r.st.Peek(a) != 5.0 {
		t.Errorf("value = %v, want 5", r.st.Peek(a))
	}
}

func TestEvictionWritesBackDirtyLine(t *testing.T) {
	r := newRig()
	par := DefaultParams()
	a := r.st.Alloc(1, 2)
	// Allocate enough on node 1 to find a conflicting line.
	filler := r.st.Alloc(1, par.CacheLines*par.LineWords)
	conflict := filler
	for LineOf(conflict, par.LineWords)%Addr(par.CacheLines) != LineOf(a, par.LineWords)%Addr(par.CacheLines) {
		conflict += Addr(par.LineWords)
	}
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.StoreWord(th, 0, a, 1.5, &bd, stats.BucketMemWait) // dirty in node 0
		r.sys.Load(th, 0, conflict, &bd, stats.BucketMemWait)    // evicts it
		if r.sys.CacheHas(0, a) {
			t.Error("conflicting fill did not evict")
		}
		// Another node reads the line: must see the written value.
		if v := r.sys.Load(th, 2, a, &bd, stats.BucketMemWait); v != 1.5 {
			t.Errorf("read after write-back got %v, want 1.5", v)
		}
	})
	if r.sys.Events().WriteBacks < 1 {
		t.Error("no write-back counted")
	}
}

func TestIdealNetworkUniformLatency(t *testing.T) {
	r := newRig()
	oneWay := r.clk.Cycles(100)
	r.sys.SetIdealNetwork(oneWay)
	near := r.st.Alloc(1, 2) // 1 hop away from node 0
	far := r.st.Alloc(31, 2) // 10 hops away
	var nearCyc, farCyc float64
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		nearCyc = r.cycles(th, func() { r.sys.Load(th, 0, near, &bd, stats.BucketMemWait) })
		farCyc = r.cycles(th, func() { r.sys.Load(th, 0, far, &bd, stats.BucketMemWait) })
	})
	if nearCyc != farCyc {
		t.Errorf("ideal network latencies differ: near %.1f, far %.1f", nearCyc, farCyc)
	}
	// Round trip of 2*100 cycles plus occupancies.
	if nearCyc < 200 || nearCyc > 260 {
		t.Errorf("ideal remote miss = %.1f cycles, want ~220", nearCyc)
	}
	if r.net.PacketsSent() != 0 {
		t.Errorf("ideal mode sent %d real packets", r.net.PacketsSent())
	}
}

func TestFlushAll(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(0, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.Load(th, 0, a, &bd, stats.BucketMemWait)
		if !r.sys.CacheHas(0, a) {
			t.Fatal("line not cached")
		}
		r.sys.FlushAll()
		if r.sys.CacheHas(0, a) {
			t.Error("line survived FlushAll")
		}
	})
}

func TestUpgradeCounted(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(3, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.Load(th, 0, a, &bd, stats.BucketMemWait)         // S
		r.sys.StoreWord(th, 0, a, 1, &bd, stats.BucketMemWait) // upgrade
	})
	if r.sys.Events().Upgrades != 1 {
		t.Errorf("Upgrades = %d, want 1", r.sys.Events().Upgrades)
	}
}

func TestDeterministicReplay(t *testing.T) {
	runOnce := func() (sim.Time, float64) {
		r := newRig()
		a := r.st.Alloc(0, 64)
		bodies := make([]func(*sim.Thread), 4)
		bds := make([]stats.Breakdown, 4)
		for i := range bodies {
			node, bd := i*7, &bds[i]
			bodies[i] = func(th *sim.Thread) {
				for k := 0; k < 30; k++ {
					r.sys.RMW(th, node, a+Addr(k%8), func(v float64) float64 { return v + 1 }, bd, stats.BucketSync)
				}
			}
		}
		r.run(bodies...)
		return r.eng.Now(), r.st.Peek(a)
	}
	t1, v1 := runOnce()
	t2, v2 := runOnce()
	if t1 != t2 || v1 != v2 {
		t.Errorf("nondeterministic: (%v,%v) vs (%v,%v)", t1, v1, t2, v2)
	}
}

// Property: with one designated writer per address and readers reading
// after a barrier-like delay, every read observes the final write, for
// random address/node assignments.
func TestSingleWriterVisibilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		r := newRig()
		n := 8
		addrs := make([]Addr, n)
		writers := make([]int, n)
		vals := make([]float64, n)
		for i := range addrs {
			addrs[i] = r.st.Alloc(rng.Intn(32), 2)
			writers[i] = rng.Intn(32)
			vals[i] = float64(rng.Intn(1000))
		}
		var bd1, bd2 stats.Breakdown
		r.run(
			func(th *sim.Thread) {
				for i := range addrs {
					r.sys.StoreWord(th, writers[i], addrs[i], vals[i], &bd1, stats.BucketMemWait)
				}
			},
			func(th *sim.Thread) {
				th.Sleep(r.clk.Cycles(100000)) // after all writes complete
				for i := range addrs {
					reader := rng.Intn(32)
					if v := r.sys.Load(th, reader, addrs[i], &bd2, stats.BucketMemWait); v != vals[i] {
						t.Fatalf("trial %d: read %v, want %v", trial, v, vals[i])
					}
				}
			},
		)
	}
}
