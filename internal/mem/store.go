package mem

import "fmt"

// Addr is a global shared-memory word address. The address space is
// segmented by home node: addr = home*segWords + offset. Each word holds
// one float64 (the applications' natural datum).
type Addr int64

// segWords is the per-node segment size in words (2^24 words = 128MB of
// float64s per node, far beyond any workload here).
const segWords = 1 << 24

// NilAddr is an invalid address usable as a sentinel.
const NilAddr Addr = -1

// Store is the authoritative backing state of distributed shared memory:
// per-node word arrays plus allocation bookkeeping. The coherence protocol
// provides timing and ordering; data reads and writes complete against the
// Store at their simulated completion times.
type Store struct {
	nodes int
	data  [][]float64
}

// NewStore creates a store for n nodes.
func NewStore(n int) *Store {
	return &Store{nodes: n, data: make([][]float64, n)}
}

// Nodes returns the node count.
func (s *Store) Nodes() int { return s.nodes }

// Alloc reserves words contiguous words homed at node and returns the base
// address. Allocations are line-aligned relative to the segment base so
// that a line never spans nodes.
func (s *Store) Alloc(node, words int) Addr {
	if node < 0 || node >= s.nodes {
		panic(fmt.Sprintf("mem: Alloc on bad node %d", node))
	}
	if words <= 0 {
		panic(fmt.Sprintf("mem: Alloc of %d words", words))
	}
	cur := len(s.data[node])
	// Line-align (2-word lines) so allocations don't share lines; false
	// sharing is then an application decision, not an allocator accident.
	if cur%2 != 0 {
		s.data[node] = append(s.data[node], 0)
		cur++
	}
	if cur+words > segWords {
		panic(fmt.Sprintf("mem: node %d segment exhausted", node))
	}
	s.data[node] = append(s.data[node], make([]float64, words)...)
	return Addr(node)*segWords + Addr(cur)
}

// Home returns the home node of addr.
func (s *Store) Home(a Addr) int { return int(a / segWords) }

// offset returns the word offset of addr within its home segment.
func (s *Store) offset(a Addr) int { return int(a % segWords) }

// Peek reads the authoritative value without simulated timing. Intended
// for initialization, validation, and tests.
func (s *Store) Peek(a Addr) float64 {
	return s.data[s.Home(a)][s.offset(a)]
}

// Poke writes the authoritative value without simulated timing. Intended
// for initialization before a run.
func (s *Store) Poke(a Addr, v float64) {
	s.data[s.Home(a)][s.offset(a)] = v
}

// LineOf returns the line number containing addr (lines are lineWords
// words).
func LineOf(a Addr, lineWords int) Addr { return a / Addr(lineWords) }
