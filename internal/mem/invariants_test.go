package mem

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// The run() helper already asserts strict invariants after every protocol
// scenario in this package; the tests here check the checker itself, by
// corrupting state directly and verifying each violation is reported.

func TestInvariantCheckerCleanAfterTraffic(t *testing.T) {
	r := newRig()
	a := r.st.Alloc(5, 2)
	var bd stats.Breakdown
	r.run(func(th *sim.Thread) {
		r.sys.StoreWord(th, 0, a, 1, &bd, stats.BucketMemWait)
		r.sys.Load(th, 9, a, &bd, stats.BucketMemWait)
		// Weak invariants must also hold mid-run, right after a miss.
		if err := r.sys.CheckInvariants(false); err != nil {
			t.Errorf("weak check mid-run: %v", err)
		}
	})
	if err := r.sys.CheckInvariants(false); err != nil {
		t.Errorf("weak check after clean run: %v", err)
	}
}

func TestInvariantCheckerDetectsDoubleModified(t *testing.T) {
	r := newRig()
	line := Addr(7)
	// Corrupt directly: two caches claim Modified copies of one line.
	r.sys.nodes[1].cache.fill(line, lineModified, 0)
	r.sys.nodes[2].cache.fill(line, lineModified, 0)
	err := r.sys.CheckInvariants(false)
	if err == nil {
		t.Fatal("double-Modified corruption not detected by weak check")
	}
	if !strings.Contains(err.Error(), "2 Modified holders") {
		t.Errorf("violation text missing holder count: %v", err)
	}
}

func TestInvariantCheckerDetectsWrongOwner(t *testing.T) {
	r := newRig()
	line := Addr(3)
	home := r.sys.lineHome(line)
	e := r.sys.nodes[home].dir.entry(line)
	e.state = dirModified
	e.owner = 6
	e.sharers.add(6)
	// Node 4 holds Modified but the directory says node 6 owns it.
	r.sys.nodes[4].cache.fill(line, lineModified, 0)
	err := r.sys.CheckInvariants(false)
	if err == nil {
		t.Fatal("ownership mismatch not detected by weak check")
	}
	if !strings.Contains(err.Error(), "owner=6") {
		t.Errorf("violation text missing directory owner: %v", err)
	}
}

func TestInvariantCheckerStrictDetectsStaleSharerBit(t *testing.T) {
	r := newRig()
	line := Addr(9)
	home := r.sys.lineHome(line)
	e := r.sys.nodes[home].dir.entry(line)
	e.state = dirShared
	// Node 4 holds Shared but its sharer bit is missing: legal at no
	// point (the bitset must be a superset of holders).
	r.sys.nodes[4].cache.fill(line, lineShared, 0)
	if err := r.sys.CheckInvariants(false); err != nil {
		t.Fatalf("weak check must ignore sharer bitsets: %v", err)
	}
	err := r.sys.CheckInvariants(true)
	if err == nil {
		t.Fatal("missing sharer bit not detected by strict check")
	}
	if !strings.Contains(err.Error(), "sharer bitset") {
		t.Errorf("violation text missing bitset mention: %v", err)
	}
}

func TestInvariantCheckerStrictDetectsBusyAndPending(t *testing.T) {
	r := newRig()
	line := Addr(2)
	home := r.sys.lineHome(line)
	r.sys.nodes[home].dir.entry(line).busy = true
	r.sys.nodes[5].pending[line] = &txn{write: true}
	if err := r.sys.CheckInvariants(false); err != nil {
		t.Fatalf("weak check must permit in-flight state: %v", err)
	}
	err := r.sys.CheckInvariants(true)
	if err == nil {
		t.Fatal("busy entry + pending txn not detected at quiescence")
	}
	msg := err.Error()
	if !strings.Contains(msg, "still busy") || !strings.Contains(msg, "pending transaction") {
		t.Errorf("violation text incomplete: %v", err)
	}
	ie, ok := err.(*InvariantError)
	if !ok {
		t.Fatalf("error type %T, want *InvariantError", err)
	}
	if len(ie.Violations) != 2 {
		t.Errorf("got %d violations, want 2: %v", len(ie.Violations), ie.Violations)
	}
}

func TestInvariantCheckerStrictDetectsOrphanedEntry(t *testing.T) {
	r := newRig()
	line := Addr(11)
	home := r.sys.lineHome(line)
	e := r.sys.nodes[home].dir.entry(line)
	e.state = dirModified
	e.owner = 3
	e.sharers.add(3)
	// No node caches the line: the entry is orphaned.
	err := r.sys.CheckInvariants(true)
	if err == nil {
		t.Fatal("orphaned Modified entry not detected")
	}
	if !strings.Contains(err.Error(), "orphaned") {
		t.Errorf("violation text missing orphan mention: %v", err)
	}
}

func TestBusyDumpListsTransactions(t *testing.T) {
	r := newRig()
	line := Addr(2)
	home := r.sys.lineHome(line)
	e := r.sys.nodes[home].dir.entry(line)
	e.busy = true
	e.queue = append(e.queue, func() {})
	r.sys.nodes[5].pending[Addr(8)] = &txn{write: true}
	dump := r.sys.BusyDump(0)
	if len(dump) != 2 {
		t.Fatalf("BusyDump returned %d entries, want 2: %v", len(dump), dump)
	}
	if !strings.Contains(dump[0], "busy") || !strings.Contains(dump[1], "pending txn") {
		t.Errorf("dump entries wrong: %v", dump)
	}
	if got := r.sys.BusyDump(1); len(got) != 1 {
		t.Errorf("BusyDump(1) returned %d entries, want 1", len(got))
	}
}
