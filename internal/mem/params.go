package mem

// Params configures the memory system. All cycle counts are processor
// cycles.
type Params struct {
	LineWords       int // words (8 bytes each) per cache line
	CacheLines      int // direct-mapped lines per node
	PrefetchEntries int // prefetch buffer entries per node

	HitCycles          int64 // charged (as compute) on a cache hit
	LocalMissCycles    int64 // local DRAM fill, no directory conflict
	ReqCycles          int64 // requestor-side issue of a remote request
	HomeOccCycles      int64 // home controller latency per protocol op
	CtlServiceCycles   int64 // controller initiation interval (pipelined)
	DRAMCycles         int64 // DRAM access at the home
	FillCycles         int64 // requestor-side cache fill on reply
	PrefetchMoveCycles int64 // moving a line from prefetch buffer to cache

	HWPointers      int   // directory pointers tracked in hardware
	LimitLESSCycles int64 // software-extension penalty beyond HWPointers
	// LimitLESSPerSharerCycles is the additional software cost per
	// sharer invalidated during an overflowed write (the paper's
	// 707-cycle software write vs its 425-cycle software read).
	LimitLESSPerSharerCycles int64

	HdrBytes  int // protocol message header size
	LineBytes int // cache line transfer payload size

	// Consistency selects SC (Alewife, the default) or RC (write-buffered
	// release consistency, the Section 2 latency-tolerance extension).
	Consistency Consistency
	// WriteBufferDepth bounds outstanding buffered stores under RC.
	WriteBufferDepth int

	// Protocol selects invalidation (Alewife/LimitLESS, the default) or a
	// write-through update protocol for plain stores to shared lines.
	// The paper's Section 5.1 volume argument ("at least four messages"
	// per produced value) is specific to invalidation protocols; the
	// update variant exists as an ablation of that claim. Atomic
	// operations always use exclusivity regardless of this setting.
	Protocol Protocol
}

// Protocol selects the coherence write policy for shared lines.
type Protocol int

const (
	// ProtocolInvalidate is the standard invalidation protocol.
	ProtocolInvalidate Protocol = iota
	// ProtocolUpdate pushes written data to sharers, which keep their
	// copies (readers hit; every store to a shared line is a round trip).
	ProtocolUpdate
)

func (p Protocol) String() string {
	if p == ProtocolUpdate {
		return "update"
	}
	return "invalidate"
}

// DefaultParams returns parameters calibrated to the paper's Alewife:
// 64KB direct-mapped cache with 16-byte lines, LimitLESS-5, and protocol
// occupancies tuned so the Figure 3 microbenchmarks land near the
// published penalties.
func DefaultParams() Params {
	return Params{
		LineWords:       2,
		CacheLines:      4096, // 64KB / 16B
		PrefetchEntries: 16,

		HitCycles:          1,
		LocalMissCycles:    11,
		ReqCycles:          4,
		HomeOccCycles:      7,
		CtlServiceCycles:   3,
		DRAMCycles:         6,
		FillCycles:         3,
		PrefetchMoveCycles: 3,

		HWPointers:               5,
		LimitLESSCycles:          380,
		LimitLESSPerSharerCycles: 40,

		HdrBytes:  8,
		LineBytes: 16,

		Consistency:      SC,
		WriteBufferDepth: 8,
	}
}

// LineBytesTotal returns the wire size of a line-carrying message.
func (p Params) LineBytesTotal() int { return p.HdrBytes + p.LineBytes }
