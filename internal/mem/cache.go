package mem

// Line coherence states at a cache.
type lineState uint8

const (
	lineInvalid lineState = iota
	lineShared
	lineModified
)

// cacheLine is one direct-mapped cache frame.
type cacheLine struct {
	tag   Addr // line number (addr / LineWords); valid only if state != lineInvalid
	state lineState
	gen   uint64 // home's ownership generation for a Modified copy (see dirEntry.modGen)
}

// pfEntry is one prefetch buffer slot.
type pfEntry struct {
	tag   Addr
	state lineState
	gen   uint64 // as cacheLine.gen
	used  bool   // filled
}

// cache models one node's direct-mapped cache plus its software-prefetch
// buffer. It tracks only tags and states; data lives in the Store.
type cache struct {
	lines []cacheLine
	pf    []pfEntry
	pfNxt int // FIFO replacement cursor for the prefetch buffer
}

func newCache(p Params) *cache {
	return &cache{
		lines: make([]cacheLine, p.CacheLines),
		pf:    make([]pfEntry, p.PrefetchEntries),
	}
}

func (c *cache) idx(line Addr) int { return int(line % Addr(len(c.lines))) }

// lookup returns the state of line in the cache proper (not the prefetch
// buffer); lineInvalid if absent.
func (c *cache) lookup(line Addr) lineState {
	fr := &c.lines[c.idx(line)]
	if fr.state != lineInvalid && fr.tag == line {
		return fr.state
	}
	return lineInvalid
}

// fill installs line with state st and ownership generation gen,
// returning the victim line number, whether the victim was dirty (needs
// write-back), and the victim's generation. A victim of NilAddr means
// the frame was free or held the same line.
func (c *cache) fill(line Addr, st lineState, gen uint64) (victim Addr, victimDirty bool, victimGen uint64) {
	fr := &c.lines[c.idx(line)]
	victim, victimDirty, victimGen = NilAddr, false, 0
	if fr.state != lineInvalid && fr.tag != line {
		victim = fr.tag
		victimDirty = fr.state == lineModified
		victimGen = fr.gen
	}
	fr.tag = line
	fr.state = st
	fr.gen = gen
	return victim, victimDirty, victimGen
}

// setState updates the state of a resident line; no-op if absent.
func (c *cache) setState(line Addr, st lineState) {
	fr := &c.lines[c.idx(line)]
	if fr.tag == line && fr.state != lineInvalid {
		fr.state = st
	}
}

// invalidate drops line from the cache and prefetch buffer. It reports
// whether the dropped copy was dirty.
func (c *cache) invalidate(line Addr) (wasDirty bool) {
	fr := &c.lines[c.idx(line)]
	if fr.tag == line && fr.state != lineInvalid {
		wasDirty = fr.state == lineModified
		fr.state = lineInvalid
	}
	for i := range c.pf {
		if c.pf[i].used && c.pf[i].tag == line {
			if c.pf[i].state == lineModified {
				wasDirty = true
			}
			c.pf[i].used = false
		}
	}
	return wasDirty
}

// downgrade moves a Modified line to Shared (owner keeps a copy);
// no-op if absent.
func (c *cache) downgrade(line Addr) {
	c.setState(line, lineShared)
	for i := range c.pf {
		if c.pf[i].used && c.pf[i].tag == line && c.pf[i].state == lineModified {
			c.pf[i].state = lineShared
		}
	}
}

// pfLookup finds line in the prefetch buffer, returning its slot or -1.
func (c *cache) pfLookup(line Addr) int {
	for i := range c.pf {
		if c.pf[i].used && c.pf[i].tag == line {
			return i
		}
	}
	return -1
}

// pfFill deposits a prefetched line, evicting FIFO. It returns the evicted
// line (NilAddr if the slot was free) and whether the eviction dropped a
// dirty copy. An unused eviction is a "useless prefetch" signal.
func (c *cache) pfFill(line Addr, st lineState, gen uint64) (evicted Addr, evictedDirty bool, evictedGen uint64) {
	if len(c.pf) == 0 {
		return NilAddr, false, 0
	}
	slot := &c.pf[c.pfNxt]
	c.pfNxt = (c.pfNxt + 1) % len(c.pf)
	evicted, evictedDirty, evictedGen = NilAddr, false, 0
	if slot.used {
		evicted = slot.tag
		evictedDirty = slot.state == lineModified
		evictedGen = slot.gen
	}
	slot.tag = line
	slot.state = st
	slot.gen = gen
	slot.used = true
	return evicted, evictedDirty, evictedGen
}

// pfTake removes slot i from the prefetch buffer, returning its state
// and ownership generation.
func (c *cache) pfTake(i int) (lineState, uint64) {
	st, gen := c.pf[i].state, c.pf[i].gen
	c.pf[i].used = false
	return st, gen
}

// has reports whether the line is present in cache or prefetch buffer.
func (c *cache) has(line Addr) bool {
	return c.lookup(line) != lineInvalid || c.pfLookup(line) >= 0
}
