package mem

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/stats"
)

// protocolConfigs enumerates the memory-system variants that must all
// preserve program semantics.
func protocolConfigs() map[string]Params {
	out := map[string]Params{}
	for _, cons := range []Consistency{SC, RC} {
		for _, prot := range []Protocol{ProtocolInvalidate, ProtocolUpdate} {
			p := DefaultParams()
			p.Consistency = cons
			p.Protocol = prot
			out[fmt.Sprintf("%v/%v", cons, prot)] = p
		}
	}
	return out
}

// TestProtocolFuzzRandomPrograms runs randomized race-free programs over
// every protocol variant and checks exact outcomes:
//
//   - shared counters are touched only through RMW: their totals are exact;
//   - single-writer words: the owner's last written value must be read
//     back exactly by the owner and, after quiescence, be the stored value;
//   - random prefetches (read and write) are sprinkled in and must never
//     change results.
func TestProtocolFuzzRandomPrograms(t *testing.T) {
	for name, par := range protocolConfigs() {
		par := par
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 4; trial++ {
				runFuzzTrial(t, par, int64(100+trial))
			}
		})
	}
}

func runFuzzTrial(t *testing.T, par Params, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	eng := sim.NewEngine()
	net := mesh.New(eng, mesh.Config{Width: 8, Height: 4, HopLatency: 40000, PsPerByte: 22223})
	clk := sim.NewClock(20)
	st := NewStore(32)
	sys := NewSystem(eng, net, clk, par, st)

	const nCounters = 6
	const nPrivate = 32 // one per node
	counters := make([]Addr, nCounters)
	for i := range counters {
		counters[i] = st.Alloc(rng.Intn(32), 2)
	}
	private := make([]Addr, nPrivate)
	for i := range private {
		private[i] = st.Alloc(rng.Intn(32), 2)
	}

	expectedIncrements := make([]int, nCounters)
	lastWrite := make([]float64, nPrivate)
	type plan struct {
		ops []func(th *sim.Thread, node int, bd *stats.Breakdown)
	}
	plans := make([]plan, 32)
	for node := 0; node < 32; node++ {
		node := node
		nOps := 10 + rng.Intn(20)
		for k := 0; k < nOps; k++ {
			switch rng.Intn(5) {
			case 0: // increment a random shared counter atomically
				c := rng.Intn(nCounters)
				expectedIncrements[c]++
				a := counters[c]
				plans[node].ops = append(plans[node].ops,
					func(th *sim.Thread, node int, bd *stats.Breakdown) {
						sys.RMW(th, node, a, func(v float64) float64 { return v + 1 }, bd, stats.BucketSync)
					})
			case 1: // write own private word
				v := float64(rng.Intn(1000) + 1)
				lastWrite[node] = v
				a := private[node]
				plans[node].ops = append(plans[node].ops,
					func(th *sim.Thread, node int, bd *stats.Breakdown) {
						sys.StoreWord(th, node, a, v, bd, stats.BucketMemWait)
					})
			case 2: // read own private word: must see own last write
				want := lastWrite[node]
				a := private[node]
				if want == 0 {
					continue
				}
				plans[node].ops = append(plans[node].ops,
					func(th *sim.Thread, node int, bd *stats.Breakdown) {
						if got := sys.Load(th, node, a, bd, stats.BucketMemWait); got != want {
							t.Errorf("node %d read-own-write got %v, want %v", node, got, want)
						}
					})
			case 3: // read someone's counter (any momentary value is fine)
				a := counters[rng.Intn(nCounters)]
				plans[node].ops = append(plans[node].ops,
					func(th *sim.Thread, node int, bd *stats.Breakdown) {
						sys.Load(th, node, a, bd, stats.BucketMemWait)
					})
			case 4: // random prefetch (never changes semantics)
				a := counters[rng.Intn(nCounters)]
				if rng.Intn(2) == 0 {
					a = private[rng.Intn(nPrivate)]
				}
				write := rng.Intn(2) == 0
				plans[node].ops = append(plans[node].ops,
					func(th *sim.Thread, node int, bd *stats.Breakdown) {
						sys.Prefetch(node, a, write)
					})
			}
		}
	}

	bds := make([]stats.Breakdown, 32)
	for node := 0; node < 32; node++ {
		node := node
		eng.Spawn("p", 0, func(th *sim.Thread) {
			for _, op := range plans[node].ops {
				op(th, node, &bds[node])
				th.Sleep(clk.Cycles(int64(1 + seed%7)))
			}
			sys.Fence(th, node, &bds[node], stats.BucketMemWait)
		})
	}
	eng.SetEventLimit(100_000_000)
	eng.Run()

	if err := sys.CheckInvariants(true); err != nil {
		t.Errorf("seed %d: %v", seed, err)
	}

	for c, want := range expectedIncrements {
		if got := st.Peek(counters[c]); got != float64(want) {
			t.Errorf("seed %d: counter %d = %v, want %d", seed, c, got, want)
		}
	}
	for node, want := range lastWrite {
		if want == 0 {
			continue
		}
		if got := st.Peek(private[node]); got != want {
			t.Errorf("seed %d: private[%d] = %v, want %v", seed, node, got, want)
		}
	}
}
