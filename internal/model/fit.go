package model

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/stats"
)

// Fit extracts AppParams from two baseline simulator runs (shared memory
// and polled message passing) of the same application, using the
// simulator's own counters: compute from the breakdown, values from the
// miss/message counts, per-value costs from the stall/overhead buckets,
// and bytes from the volume accounting. The result lets the analytical
// model be compared against measured sweeps with no hand-tuned numbers.
func Fit(smRun, mpRun core.RunResult, cfg machine.Config) (AppParams, MachineParams, error) {
	if smRun.Mech != apps.SM || mpRun.Mech != apps.MPPoll {
		return AppParams{}, MachineParams{}, fmt.Errorf("model: Fit wants SM and MP-poll runs, got %v and %v",
			smRun.Mech, mpRun.Mech)
	}
	procs := float64(cfg.Nodes())
	cyc := func(t stats.Breakdown, b stats.TimeBucket) float64 {
		clkPs := 1e6 / cfg.ClockMHz
		return float64(t.T[b]) / clkPs / procs
	}

	values := float64(smRun.Events.RemoteMisses()) / procs
	if values <= 0 {
		return AppParams{}, MachineParams{}, fmt.Errorf("model: SM run has no remote misses to fit")
	}
	mpMsgs := float64(mpRun.Events.MessagesSent) / procs
	if mpMsgs <= 0 {
		return AppParams{}, MachineParams{}, fmt.Errorf("model: MP run sent no messages")
	}

	oneWay := core.NetLatencyCycles(cfg)
	endpoint := cyc(smRun.Breakdown, stats.BucketMemWait)/values - 2*oneWay
	if endpoint < 0 {
		endpoint = 0
	}
	app := AppParams{
		ComputeCycles:    cyc(smRun.Breakdown, stats.BucketCompute),
		Values:           values,
		SMEndpointCycles: endpoint,
		SMBytes:          float64(smRun.Volume.Total()) / (values * procs),
		MPOverhead: (cyc(mpRun.Breakdown, stats.BucketMsgOverhead) +
			cyc(mpRun.Breakdown, stats.BucketMemWait)) / values,
		MPBytes:        float64(mpRun.Volume.Total()) / (values * procs),
		PrefetchHidden: 0.35, // the measured EM3D prefetch gain fraction
		SyncCycles:     cyc(mpRun.Breakdown, stats.BucketSync),
	}
	mp := MachineParams{
		Procs:            cfg.Nodes(),
		BisectionPerCyc:  smRun.Bisection,
		OneWayLatency:    oneWay,
		BaseOneWay:       oneWay,
		BisectionTraffic: 0.5, // dimension-order traffic crossing the middle cut
	}
	return app, mp, nil
}
