package model

import (
	"fmt"
	"math"
)

// Mechanism mirrors the study's three structural classes (prefetching is
// shared memory with partial overlap; interrupts/polling/bulk share the
// one-way structure at this level of abstraction).
type Mechanism int

const (
	// SharedMemory blocks a round trip per demand miss.
	SharedMemory Mechanism = iota
	// Prefetched overlaps a fraction of the round trips.
	Prefetched
	// MessagePassing communicates one-way at production time.
	MessagePassing
)

func (m Mechanism) String() string {
	switch m {
	case SharedMemory:
		return "shared-memory"
	case Prefetched:
		return "prefetched"
	case MessagePassing:
		return "message-passing"
	}
	return fmt.Sprintf("Mechanism(%d)", int(m))
}

// AppParams characterizes one application per processor.
type AppParams struct {
	ComputeCycles float64 // useful work per processor
	Values        float64 // remote values communicated per processor

	// Per-value costs by mechanism.
	SMEndpointCycles float64 // latency-independent part of an SM stall (controllers, DRAM, queueing)
	SMBytes          float64 // bytes injected per value (protocol total)
	MPOverhead       float64 // processor overhead per value (send+receive)
	MPBytes          float64 // bytes injected per value (header amortized)
	PrefetchHidden   float64 // fraction of SM stall hidden by prefetching (0..1)

	// SyncCycles is mechanism-independent synchronization (barriers).
	SyncCycles float64
}

// MachineParams characterizes the machine.
type MachineParams struct {
	Procs            int
	BisectionPerCyc  float64 // machine-wide bisection bandwidth, bytes per processor cycle
	OneWayLatency    float64 // one-way network latency, cycles
	BaseOneWay       float64 // the unstressed latency (for region classification)
	BisectionTraffic float64 // fraction of injected bytes crossing the bisection
}

// Prediction is the model output for one (app, machine, mechanism) point.
type Prediction struct {
	Cycles     float64
	Rho        float64 // offered bisection utilization (0..1+)
	Region     Region
	StallShare float64 // fraction of runtime in communication stalls
}

// Region mirrors the paper's three regimes.
type Region int

const (
	// Hiding: communication is overlapped or negligible.
	Hiding Region = iota
	// Latency: runtime grows with the latency term.
	Latency
	// Congestion: the bandwidth term dominates nonlinearly.
	Congestion
)

func (r Region) String() string {
	switch r {
	case Hiding:
		return "latency-hiding"
	case Latency:
		return "latency-dominated"
	case Congestion:
		return "congestion-dominated"
	}
	return fmt.Sprintf("Region(%d)", int(r))
}

// congestionCap bounds the 1/(1-rho) factor (a saturated network
// serializes, it does not diverge).
const congestionCap = 8

// Predict evaluates the model at one point by fixed-point iteration on
// runtime (offered load depends on runtime, stall cost depends on load).
func Predict(app AppParams, m MachineParams, mech Mechanism) Prediction {
	bytesPerValue := app.SMBytes
	switch mech {
	case MessagePassing:
		bytesPerValue = app.MPBytes
	}
	// Bisection load is machine-wide: all processors' injected bytes
	// against the machine's cut bandwidth over the runtime.
	totalBytes := app.Values * bytesPerValue * float64(m.Procs) * m.BisectionTraffic

	base := app.ComputeCycles + app.SyncCycles
	perValue := func(oneWay, f float64) float64 {
		switch mech {
		case SharedMemory:
			// Round trip of blocking latency plus the fixed endpoint
			// costs, both stretched by congestion.
			return (app.SMEndpointCycles + 2*oneWay) * f
		case Prefetched:
			return (app.SMEndpointCycles + 2*oneWay) * f * (1 - app.PrefetchHidden)
		default:
			// One-way and asynchronous: processor overhead is not
			// latency-scaled; only a sliver of congestion queueing
			// surfaces past the overlap.
			return app.MPOverhead * (1 + 0.25*(f-1))
		}
	}

	// Demand utilization: offered load at the uncongested runtime. Used
	// for region classification (the converged rho is elastic — a
	// stretched runtime deflates it).
	t0 := base + app.Values*perValue(m.OneWayLatency, 1)
	rho0 := totalBytes / (t0 * m.BisectionPerCyc)

	// Damped fixed point for the congested runtime (plain iteration can
	// oscillate when the stall-load feedback is strong).
	t := t0
	var rho, stall float64
	for iter := 0; iter < 200; iter++ {
		rho = totalBytes / (t * m.BisectionPerCyc)
		f := congestionFactor(rho)
		stall = app.Values * perValue(m.OneWayLatency, f)
		next := base + stall
		if math.Abs(next-t) < 1e-9*t {
			t = next
			break
		}
		t = 0.5*t + 0.5*next
	}

	// Region: excess stall relative to the mechanism's own unstressed
	// operating point (base latency, uncongested network).
	baseStall := app.Values * perValue(m.BaseOneWay, 1)
	excess := stall - baseStall
	p := Prediction{Cycles: t, Rho: rho, StallShare: stall / t}
	switch {
	case rho0 > 0.5:
		p.Region = Congestion
	case excess < 0.08*t:
		p.Region = Hiding
	default:
		p.Region = Latency
	}
	return p
}

func congestionFactor(rho float64) float64 {
	if rho >= 1 {
		return congestionCap
	}
	f := 1 / (1 - rho)
	if f > congestionCap {
		return congestionCap
	}
	return f
}

// BisectionCurve evaluates the model across bisection bandwidths (the
// analytical Figure 1).
func BisectionCurve(app AppParams, m MachineParams, mech Mechanism, bisections []float64) []Prediction {
	out := make([]Prediction, len(bisections))
	for i, b := range bisections {
		mm := m
		mm.BisectionPerCyc = b
		out[i] = Predict(app, mm, mech)
	}
	return out
}

// LatencyCurve evaluates the model across one-way latencies (the
// analytical Figure 2).
func LatencyCurve(app AppParams, m MachineParams, mech Mechanism, latencies []float64) []Prediction {
	out := make([]Prediction, len(latencies))
	for i, l := range latencies {
		mm := m
		mm.OneWayLatency = l
		out[i] = Predict(app, mm, mech)
	}
	return out
}
