package model

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/machine"
)

// em3dish is a hand-rolled parameter set with EM3D character, for tests
// that don't need simulator fitting.
func em3dish() (AppParams, MachineParams) {
	app := AppParams{
		ComputeCycles:    6000,
		Values:           110,
		SMEndpointCycles: 80,
		SMBytes:          48,
		MPOverhead:       25,
		MPBytes:          12,
		PrefetchHidden:   0.35,
		SyncCycles:       1500,
	}
	m := MachineParams{
		Procs: 32, BisectionPerCyc: 18,
		OneWayLatency: 15, BaseOneWay: 15,
		BisectionTraffic: 0.5,
	}
	return app, m
}

func TestPredictBasicOrdering(t *testing.T) {
	app, m := em3dish()
	sm := Predict(app, m, SharedMemory)
	pf := Predict(app, m, Prefetched)
	mp := Predict(app, m, MessagePassing)
	if !(mp.Cycles < pf.Cycles && pf.Cycles < sm.Cycles) {
		t.Errorf("ordering wrong: MP %.0f, PF %.0f, SM %.0f", mp.Cycles, pf.Cycles, sm.Cycles)
	}
	if sm.Rho <= mp.Rho {
		t.Errorf("SM offered load %.3f <= MP %.3f", sm.Rho, mp.Rho)
	}
}

func TestBisectionCurveShape(t *testing.T) {
	app, m := em3dish()
	bisections := []float64{18, 10, 6, 4, 2, 1}
	sm := BisectionCurve(app, m, SharedMemory, bisections)
	mp := BisectionCurve(app, m, MessagePassing, bisections)
	// Monotone degradation.
	for i := 1; i < len(sm); i++ {
		if sm[i].Cycles < sm[i-1].Cycles {
			t.Errorf("SM not monotone at %v", bisections[i])
		}
	}
	// SM hits congestion before MP.
	smCong, mpCong := -1, -1
	for i := range sm {
		if sm[i].Region == Congestion && smCong < 0 {
			smCong = i
		}
		if mp[i].Region == Congestion && mpCong < 0 {
			mpCong = i
		}
	}
	if smCong < 0 {
		t.Fatal("SM never reaches the congestion region")
	}
	if mpCong >= 0 && mpCong <= smCong {
		t.Errorf("MP congests at index %d, not after SM's %d", mpCong, smCong)
	}
	// The absolute degradation of SM exceeds MP's.
	smLoss := sm[len(sm)-1].Cycles - sm[0].Cycles
	mpLoss := mp[len(mp)-1].Cycles - mp[0].Cycles
	if smLoss <= mpLoss {
		t.Errorf("SM loses %.0f, MP loses %.0f; SM should lose more", smLoss, mpLoss)
	}
}

func TestLatencyCurveShape(t *testing.T) {
	app, m := em3dish()
	lats := []float64{15, 50, 100, 200}
	sm := LatencyCurve(app, m, SharedMemory, lats)
	pf := LatencyCurve(app, m, Prefetched, lats)
	mp := LatencyCurve(app, m, MessagePassing, lats)
	smSlope := (sm[3].Cycles - sm[0].Cycles) / (lats[3] - lats[0])
	pfSlope := (pf[3].Cycles - pf[0].Cycles) / (lats[3] - lats[0])
	mpSlope := (mp[3].Cycles - mp[0].Cycles) / (lats[3] - lats[0])
	if !(mpSlope < pfSlope && pfSlope < smSlope) {
		t.Errorf("slopes: MP %.2f, PF %.2f, SM %.2f; want MP < PF < SM", mpSlope, pfSlope, smSlope)
	}
	if mpSlope > 0.01*smSlope {
		t.Errorf("MP slope %.3f not ~flat vs SM %.3f", mpSlope, smSlope)
	}
	// Figure 2's regions: SM latency-dominated at high latency, MP hiding.
	if sm[3].Region == Hiding {
		t.Error("SM at 200 cycles classified as hiding")
	}
	if mp[3].Region != Hiding {
		t.Errorf("MP at 200 cycles = %v, want hiding", mp[3].Region)
	}
}

func TestCongestionFactorBounds(t *testing.T) {
	if congestionFactor(0) != 1 {
		t.Error("zero load should have factor 1")
	}
	if congestionFactor(0.5) != 2 {
		t.Error("rho=0.5 should double")
	}
	if congestionFactor(1.5) != congestionCap {
		t.Error("overload should cap")
	}
	if congestionFactor(0.999) != congestionCap {
		t.Error("near-saturation should cap")
	}
}

func TestFitFromSimulatorAndAgree(t *testing.T) {
	// Fit the model from two baseline runs, then check it against the
	// simulator at the baseline and at a stressed point.
	cfg := machine.DefaultConfig()
	smRun := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.SM,
		Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true})
	mpRun := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.MPPoll,
		Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true})
	app, m, err := Fit(smRun, mpRun, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline agreement within a factor of two per mechanism.
	smPred := Predict(app, m, SharedMemory)
	mpPred := Predict(app, m, MessagePassing)
	perProcSM := float64(smRun.Cycles)
	perProcMP := float64(mpRun.Cycles)
	if r := smPred.Cycles / perProcSM; r < 0.5 || r > 2 {
		t.Errorf("SM baseline: model %.0f vs measured %.0f (ratio %.2f)", smPred.Cycles, perProcSM, r)
	}
	if r := mpPred.Cycles / perProcMP; r < 0.5 || r > 2 {
		t.Errorf("MP baseline: model %.0f vs measured %.0f (ratio %.2f)", mpPred.Cycles, perProcMP, r)
	}
	// Latency sensitivity direction: at 100-cycle one-way, the model's SM
	// degradation should be within 2x of the simulator's.
	cfg100 := cfg
	cfg100.IdealNetOneWayCycles = 100
	sm100 := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.SM,
		Scale: core.ScaleSweep, Machine: cfg100, SkipValidate: true})
	measuredGrowth := float64(sm100.Cycles) / float64(smRun.Cycles)
	m2 := m
	m2.OneWayLatency = 100
	modelGrowth := Predict(app, m2, SharedMemory).Cycles / smPred.Cycles
	if r := modelGrowth / measuredGrowth; r < 0.5 || r > 2 {
		t.Errorf("latency growth: model %.2fx vs measured %.2fx", modelGrowth, measuredGrowth)
	}
}

func TestFitRejectsWrongMechanisms(t *testing.T) {
	cfg := machine.DefaultConfig()
	r := core.MustRun(core.RunConfig{App: core.EM3D, Mech: apps.SM,
		Scale: core.ScaleTiny, Machine: cfg, SkipValidate: true})
	if _, _, err := Fit(r, r, cfg); err == nil {
		t.Error("Fit accepted two SM runs")
	}
}

func TestStrings(t *testing.T) {
	if SharedMemory.String() == "" || Prefetched.String() == "" || MessagePassing.String() == "" {
		t.Error("empty mechanism string")
	}
	for r := Hiding; r <= Congestion; r++ {
		if r.String() == "" {
			t.Error("empty region string")
		}
	}
}
