package model

import "math"

// ErrorStats accumulates predicted-vs-measured relative errors — the
// shared currency of model validation, used both for the closed-form
// model here and for the dependency-graph model (internal/predict) the
// figures layer compares it against.
type ErrorStats struct {
	// N counts the (predicted, measured) pairs accumulated.
	N int
	// MaxPct is the worst absolute relative error seen, in percent.
	MaxPct float64
	sumPct float64
}

// Add folds in one predicted-vs-measured pair. Pairs with a zero or
// negative measurement are ignored: there is no meaningful relative
// error against nothing.
func (s *ErrorStats) Add(predicted, measured float64) {
	if measured <= 0 {
		return
	}
	e := 100 * math.Abs(predicted-measured) / measured
	if e > s.MaxPct {
		s.MaxPct = e
	}
	s.sumPct += e
	s.N++
}

// Merge folds another accumulation into this one.
func (s *ErrorStats) Merge(o ErrorStats) {
	if o.MaxPct > s.MaxPct {
		s.MaxPct = o.MaxPct
	}
	s.sumPct += o.sumPct
	s.N += o.N
}

// MeanPct is the mean absolute relative error in percent (0 when empty).
func (s *ErrorStats) MeanPct() float64 {
	if s.N == 0 {
		return 0
	}
	return s.sumPct / float64(s.N)
}
