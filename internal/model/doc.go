// Package model is an analytical (closed-form) version of the paper's
// Section 2 intuition — the conceptual curves of Figures 1 and 2 — with
// parameters fittable from the simulator's own measurements.
//
// Runtime is modeled per processor as
//
//	T = compute + overhead + stall(latency) * contention(bandwidth)
//
// where the stall term reflects each mechanism's structure (round-trip
// blocking for sequentially-consistent shared memory, partially-hidden
// for prefetching, one-way and asynchronous for message passing) and the
// contention factor is an M/M/1-style 1/(1-rho) in the offered bisection
// load. The model exists to explain and sanity-check the measured sweeps,
// not to replace them; its tests assert agreement in shape and
// factor-of-two magnitude with the simulator.
package model
