// Package model is an analytical (closed-form) version of the paper's
// Section 2 intuition — the conceptual curves of Figures 1 and 2 — with
// parameters fittable from the simulator's own measurements.
//
// Runtime is modeled per processor as
//
//	T = compute + overhead + stall(latency) * contention(bandwidth)
//
// where the stall term reflects each mechanism's structure (round-trip
// blocking for sequentially-consistent shared memory, partially-hidden
// for prefetching, one-way and asynchronous for message passing) and the
// contention factor is an M/M/1-style 1/(1-rho) in the offered bisection
// load. The model exists to explain and sanity-check the measured sweeps,
// not to replace them; its tests assert agreement in shape and
// factor-of-two magnitude with the simulator.
//
// # Two models, two jobs
//
// The repository carries a second, structural model: internal/predict
// replays the retained causal-edge DAG of one instrumented run as a
// longest-path problem, re-solved per (latency, bandwidth) point. The
// division of labor:
//
//   - This package is the paper's *explanation*: a handful of fitted
//     scalars (misses, messages, per-mechanism stall shapes) that say
//     WHY a mechanism is latency-bound or bandwidth-bound, readable by
//     a human, extrapolatable far outside the measured range — at
//     factor-of-two fidelity. Use it for regions and intuition
//     (paperbench -model).
//
//   - internal/predict is the run's *replay*: every recorded dependence
//     at its measured cost, exact at the instrumented point and within
//     a committed error bound nearby, with a per-point confidence that
//     says when to fall back to real simulation. It knows nothing about
//     mechanism structure — whatever slack, overlap, and imbalance the
//     run actually had is what it re-solves. Use it for predicted
//     sweeps and sweep pruning (paperbench -predict).
//
// Both validate against the same simulations through ErrorStats, and
// the figures layer prints them side by side (-model -predict): the
// graph model should beat the closed form everywhere it has coverage,
// and the closed form should still name the region correctly when it
// loses on magnitude.
package model
