package repro

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Sweep benchmarks run on a fresh core.Runner per iteration so run
// memoization cannot turn later iterations into cache lookups.
// Each benchmark regenerates its artifact's data and reports the headline
// quantity as a custom metric, so `go test -bench . -benchmem` doubles as
// the reproduction harness. Workloads run at reduced scales (documented
// in EXPERIMENTS.md); use cmd/paperbench for larger runs.

import (
	"testing"

	"repro/internal/apps/em3d"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/machines"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/psync"
)

// benchSweepMechs is the mechanism subset for sweep benchmarks (the full
// five-mechanism sweeps run via cmd/paperbench).
var benchSweepMechs = []Mechanism{SM, SMPrefetch, MPPoll}

// BenchmarkFig1Regions classifies the bisection sweep's performance
// regions (the measured version of the conceptual Figure 1).
func BenchmarkFig1Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).BisectionSweep(core.EM3D, core.ScaleSweep,
			[]Mechanism{SM, MPPoll}, machine.DefaultConfig(), []float64{0, 8, 14, 16}, 64)
		if err != nil {
			b.Fatal(err)
		}
		// Bisection sweeps run in decreasing-bandwidth (increasing
		// stress) order already.
		regions := core.ClassifyRegions(pts, SM)
		b.ReportMetric(float64(len(regions)), "regions")
	}
}

// BenchmarkFig2Regions classifies the latency sweep's performance regions
// (the measured version of the conceptual Figure 2).
func BenchmarkFig2Regions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).ContextSwitchSweep(core.EM3D, core.ScaleSweep,
			[]Mechanism{SM, MPPoll}, machine.DefaultConfig(), []int64{15, 50, 100, 200})
		if err != nil {
			b.Fatal(err)
		}
		regions := core.ClassifyRegions(pts, SM)
		b.ReportMetric(float64(len(regions)), "regions")
	}
}

// BenchmarkFig3MissPenalties regenerates the Alewife cost table.
func BenchmarkFig3MissPenalties(b *testing.B) {
	var mp MissPenalties
	for i := 0; i < b.N; i++ {
		mp = MeasureMissPenalties(DefaultMachine())
	}
	b.ReportMetric(mp.LocalRead, "local-read-cycles")
	b.ReportMetric(mp.RemoteCleanRead, "remote-clean-cycles")
	b.ReportMetric(mp.LimitLESSRead, "limitless-read-cycles")
	b.ReportMetric(mp.NullAMCycles, "null-am-cycles")
}

// BenchmarkFig4Summary regenerates the per-application five-mechanism
// comparison; the reported metric is the SM/MP-poll runtime ratio.
func BenchmarkFig4Summary(b *testing.B) {
	for _, app := range Apps {
		app := app
		b.Run(string(app), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				var sm, mp int64
				for _, mech := range Mechanisms {
					r := core.MustRun(core.RunConfig{App: app, Mech: mech,
						Scale: core.ScaleSweep, Machine: machine.DefaultConfig(),
						SkipValidate: true})
					switch mech {
					case SM:
						sm = r.Cycles
					case MPPoll:
						mp = r.Cycles
					}
				}
				ratio = float64(sm) / float64(mp)
			}
			b.ReportMetric(ratio, "SM/MP-ratio")
		})
	}
}

// BenchmarkFig5Volume regenerates the communication-volume comparison;
// the metric is the SM/MP volume ratio (the paper: up to ~6x).
func BenchmarkFig5Volume(b *testing.B) {
	for _, app := range Apps {
		app := app
		b.Run(string(app), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				sm := core.MustRun(core.RunConfig{App: app, Mech: SM,
					Scale: core.ScaleSweep, Machine: machine.DefaultConfig(), SkipValidate: true})
				mp := core.MustRun(core.RunConfig{App: app, Mech: MPPoll,
					Scale: core.ScaleSweep, Machine: machine.DefaultConfig(), SkipValidate: true})
				ratio = float64(sm.Volume.Total()) / float64(mp.Volume.Total())
			}
			b.ReportMetric(ratio, "SM/MP-volume")
		})
	}
}

// BenchmarkFig7MsgLen regenerates the cross-traffic message-length
// sensitivity; the metric is the max/min runtime spread across sizes.
func BenchmarkFig7MsgLen(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).MsgLenSweep(core.EM3D, core.ScaleSweep, SM,
			machine.DefaultConfig(), 10, []int{16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
		min, max := int64(1<<62), int64(0)
		for _, pt := range pts {
			c := pt.Results[SM].Cycles
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		spread = float64(max) / float64(min)
	}
	b.ReportMetric(spread, "max/min-spread")
}

// BenchmarkFig8Bisection regenerates the bisection sweep per app; the
// metric is shared memory's extra slowdown (in cycles) relative to
// message passing at the lowest emulated bisection.
func BenchmarkFig8Bisection(b *testing.B) {
	for _, app := range Apps {
		app := app
		b.Run(string(app), func(b *testing.B) {
			var extra float64
			for i := 0; i < b.N; i++ {
				pts, err := core.NewRunner(0).BisectionSweep(app, core.ScaleSweep, benchSweepMechs,
					machine.DefaultConfig(), []float64{0, 12, 16}, 64)
				if err != nil {
					b.Fatal(err)
				}
				first, last := pts[0], pts[len(pts)-1]
				smSlow := last.Results[SM].Cycles - first.Results[SM].Cycles
				mpSlow := last.Results[MPPoll].Cycles - first.Results[MPPoll].Cycles
				extra = float64(smSlow - mpSlow)
			}
			b.ReportMetric(extra, "SM-extra-slowdown-cycles")
		})
	}
}

// BenchmarkFig9ClockScaling regenerates the clock-scaling sweep; the
// metric is SM's cycle gain from the relatively faster network at 14 MHz.
func BenchmarkFig9ClockScaling(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).ClockSweep(core.EM3D, core.ScaleSweep, benchSweepMechs,
			machine.DefaultConfig(), []float64{20, 14})
		if err != nil {
			b.Fatal(err)
		}
		gain = float64(pts[0].Results[SM].Cycles - pts[1].Results[SM].Cycles)
	}
	b.ReportMetric(gain, "SM-gain-cycles")
}

// BenchmarkFig10ContextSwitch regenerates the uniform-latency emulation;
// the metric is the SM/MP ratio at 100-cycle one-way latency (the
// paper's Chandra et al. reconciliation point).
func BenchmarkFig10ContextSwitch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).ContextSwitchSweep(core.EM3D, core.ScaleSweep, benchSweepMechs,
			machine.DefaultConfig(), []int64{15, 100})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(pts[1].Results[SM].Cycles) / float64(pts[1].Results[MPPoll].Cycles)
	}
	b.ReportMetric(ratio, "SM/MP-at-100cyc")
}

// BenchmarkTable1 regenerates the machine-parameter table; the metric is
// Alewife's bisection bytes/cycle.
func BenchmarkTable1(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		rows := machines.Table1()
		v = rows[0].BytesPerCycle
	}
	b.ReportMetric(v, "alewife-bytes/cycle")
}

// BenchmarkTable2 regenerates the local-miss-relative table; the metric
// is Alewife's bisection bytes per local miss (paper: 198).
func BenchmarkTable2(b *testing.B) {
	var v float64
	for i := 0; i < b.N; i++ {
		v = machines.Alewife().BisPerLocalMiss()
	}
	b.ReportMetric(v, "alewife-bytes/lcl-miss")
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// BenchmarkAblationFullMapDirectory contrasts LimitLESS-5 with a full-map
// directory (no software traps) on EM3D shared memory: the metric is the
// runtime saved by full-map, i.e. what directory overflow costs.
func BenchmarkAblationFullMapDirectory(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		base := core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
			Scale: core.ScaleSweep, Machine: machine.DefaultConfig(), SkipValidate: true})
		cfg := machine.DefaultConfig()
		cfg.Mem.HWPointers = 64 // full map: never traps
		full := core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
			Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true})
		saved = float64(base.Cycles-full.Cycles) / float64(base.Cycles)
	}
	b.ReportMetric(100*saved, "limitless-cost-%")
}

// BenchmarkAblationBarrier contrasts the combining-tree shared-memory
// barrier with the naive central-counter barrier.
func BenchmarkAblationBarrier(b *testing.B) {
	measure := func(central bool) int64 {
		m := machine.New(machine.DefaultConfig())
		var wait func(p *machine.Proc)
		if central {
			bar := psync.NewSMCentralBarrier(m)
			wait = bar.Wait
		} else {
			bar := psync.NewSMBarrier(m)
			wait = bar.Wait
		}
		res := m.Run(func(p *machine.Proc) {
			for k := 0; k < 20; k++ {
				wait(p)
			}
		})
		return res.Cycles / 20
	}
	var tree, central int64
	for i := 0; i < b.N; i++ {
		tree = measure(false)
		central = measure(true)
	}
	b.ReportMetric(float64(tree), "tree-cycles/barrier")
	b.ReportMetric(float64(central), "central-cycles/barrier")
}

// BenchmarkAblationInterruptInterval varies the interrupt-check bound: a
// looser bound delays message delivery, hurting the dependence-heavy
// ICCG (the paper's interrupt-asynchrony effect).
func BenchmarkAblationInterruptInterval(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		fast := machine.DefaultConfig()
		fast.InterruptCheckCycles = 50
		slow := machine.DefaultConfig()
		slow.InterruptCheckCycles = 800
		rf := core.MustRun(core.RunConfig{App: core.ICCG, Mech: MPInterrupt,
			Scale: core.ScaleTiny, Machine: fast, SkipValidate: true})
		rs := core.MustRun(core.RunConfig{App: core.ICCG, Mech: MPInterrupt,
			Scale: core.ScaleTiny, Machine: slow, SkipValidate: true})
		slowdown = float64(rs.Cycles) / float64(rf.Cycles)
	}
	b.ReportMetric(slowdown, "800cyc/50cyc-ratio")
}

// BenchmarkAblationCrossMsgSize contrasts cross-traffic granularities at
// a fixed consumed bandwidth (the Figure 7 design decision to use 64B).
func BenchmarkAblationCrossMsgSize(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		pts, err := core.NewRunner(0).MsgLenSweep(core.EM3D, core.ScaleTiny, SM,
			machine.DefaultConfig(), 10, []int{16, 256})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(pts[1].Results[SM].Cycles) / float64(pts[0].Results[SM].Cycles)
	}
	b.ReportMetric(ratio, "256B/16B-runtime-ratio")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// processor-cycles per second of host time for a communication-heavy run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
			Scale: core.ScaleTiny, Machine: machine.DefaultConfig(), SkipValidate: true})
	}
}

// BenchmarkAblationRelaxedConsistency contrasts sequential consistency
// with write-buffered release consistency on EM3D shared memory at
// 100-cycle uniform latency — the Section 2 latency-tolerance technique
// Alewife did not implement. The metric is RC's saving; it is modest
// because blocking reads, not writes, dominate shared-memory stalls
// (consistent with Holt et al., the paper's reference [21]).
func BenchmarkAblationRelaxedConsistency(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		mk := func(c mem.Consistency) int64 {
			cfg := machine.DefaultConfig()
			cfg.Mem.Consistency = c
			cfg.IdealNetOneWayCycles = 100
			return core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
				Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true}).Cycles
		}
		sc := mk(mem.SC)
		rc := mk(mem.RC)
		saved = 100 * float64(sc-rc) / float64(sc)
	}
	b.ReportMetric(saved, "rc-saving-%")
}

// BenchmarkEmulatedMachines runs EM3D on three emulated Table 1 machines
// and reports their SM/MP ratios — the paper's conclusion ("network
// latency will worsen for shared memory") as a measurement.
func BenchmarkEmulatedMachines(b *testing.B) {
	for _, name := range []string{"MIT Alewife", "Stanford DASH", "Stanford FLASH"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				m, err := machines.ByName(name)
				if err != nil {
					b.Fatal(err)
				}
				cfg, _, err := machines.ConfigFor(m)
				if err != nil {
					b.Fatal(err)
				}
				sm := core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
					Scale: core.ScaleTiny, Machine: cfg, SkipValidate: true})
				mp := core.MustRun(core.RunConfig{App: core.EM3D, Mech: MPPoll,
					Scale: core.ScaleTiny, Machine: cfg, SkipValidate: true})
				ratio = float64(sm.Cycles) / float64(mp.Cycles)
			}
			b.ReportMetric(ratio, "SM/MP-ratio")
		})
	}
}

// BenchmarkAblationUpdateProtocol contrasts the invalidation protocol
// with a write-through update protocol on EM3D shared memory. The paper's
// Section 5.1 volume argument (>=4 messages per produced value) is
// invalidation-specific; the metrics report how much volume and runtime
// the update variant changes on a producer-consumer application.
func BenchmarkAblationUpdateProtocol(b *testing.B) {
	var volRatio, runRatio float64
	for i := 0; i < b.N; i++ {
		inval := core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
			Scale: core.ScaleSweep, Machine: machine.DefaultConfig(), SkipValidate: true})
		cfg := machine.DefaultConfig()
		cfg.Mem.Protocol = mem.ProtocolUpdate
		upd := core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
			Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true})
		volRatio = float64(upd.Volume.Total()) / float64(inval.Volume.Total())
		runRatio = float64(upd.Cycles) / float64(inval.Cycles)
	}
	b.ReportMetric(volRatio, "update/inval-volume")
	b.ReportMetric(runRatio, "update/inval-runtime")
}

// BenchmarkAblationAdaptiveRouting contrasts dimension-ordered routing
// (Alewife's EMRC) with minimal XY/YX adaptive routing on EM3D shared
// memory under heavy cross-traffic, where escape paths matter most.
func BenchmarkAblationAdaptiveRouting(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		mk := func(adaptive bool) int64 {
			cfg := machine.DefaultConfig()
			cfg.AdaptiveXY = adaptive
			cfg.CrossTraffic = mesh.CrossTraffic{MsgBytes: 64, BytesPerCycle: 14}
			return core.MustRun(core.RunConfig{App: core.EM3D, Mech: SM,
				Scale: core.ScaleSweep, Machine: cfg, SkipValidate: true}).Cycles
		}
		det := mk(false)
		ada := mk(true)
		gain = 100 * float64(det-ada) / float64(det)
	}
	b.ReportMetric(gain, "adaptive-saving-%")
}

// BenchmarkAblationValueLayout contrasts EM3D's padded value layout (one
// value per 16-byte line, the default) with a packed layout (two per
// line). Packing halves cold read misses but pushes value lines to ~5
// sharers, overflowing LimitLESS-5 on nearly every line every phase —
// the layout decision interacts with the directory design.
func BenchmarkAblationValueLayout(b *testing.B) {
	var ratio, trapRatio float64
	for i := 0; i < b.N; i++ {
		run := func(packed bool) core.RunResult {
			a, err := core.NewApp(core.EM3D, core.ScaleSweep)
			if err != nil {
				b.Fatal(err)
			}
			a.(*em3d.App).SetPackedLayout(packed)
			m := machine.New(machine.DefaultConfig())
			a.Setup(m, SM)
			res := m.Run(a.Body)
			return core.RunResult{Result: res, App: core.EM3D, Mech: SM}
		}
		padded := run(false)
		packed := run(true)
		ratio = float64(packed.Cycles) / float64(padded.Cycles)
		trapRatio = float64(packed.Events.LimitLESSTraps+1) / float64(padded.Events.LimitLESSTraps+1)
	}
	b.ReportMetric(ratio, "packed/padded-runtime")
	b.ReportMetric(trapRatio, "packed/padded-traps")
}
