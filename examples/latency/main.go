// Latency: reproduce the Figure 9 and Figure 10 experiments — vary the
// relative network latency first by scaling the processor clock against
// the asynchronous network, then by emulating an ideal uniform-latency
// network for shared memory.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)
	app := repro.EM3D
	mechs := []repro.Mechanism{repro.SM, repro.SMPrefetch, repro.MPPoll}

	fmt.Printf("Figure 9-style clock scaling for %s (20 -> 14 MHz, fixed network):\n\n", app)
	pts, err := repro.ClockSweep(app, mechs, nil)
	if err != nil {
		log.Fatal(err)
	}
	printSeries("net latency (cycles)", mechs, pts)

	fmt.Printf("\nFigure 10-style uniform-latency emulation for %s:\n", app)
	fmt.Println("(message-passing rows are fixed references, as in the paper)")
	fmt.Println()
	pts, err = repro.LatencySweep(app, mechs, nil)
	if err != nil {
		log.Fatal(err)
	}
	printSeries("one-way latency (cyc)", mechs, pts)

	first, last := pts[0], pts[len(pts)-1]
	smGrowth := float64(last.Results[repro.SM].Cycles) / float64(first.Results[repro.SM].Cycles)
	pfGrowth := float64(last.Results[repro.SMPrefetch].Cycles) / float64(first.Results[repro.SMPrefetch].Cycles)
	fmt.Printf("\nfrom %.0f to %.0f cycles one-way: SM slows %.2fx, SM+prefetch %.2fx, MP unchanged\n",
		first.X, last.X, smGrowth, pfGrowth)
}

func printSeries(xlabel string, mechs []repro.Mechanism, pts []repro.SweepPoint) {
	fmt.Printf("%-22s", xlabel)
	for _, m := range mechs {
		fmt.Printf("%12s", m.Short())
	}
	fmt.Println()
	for _, pt := range pts {
		fmt.Printf("%-22.1f", pt.X)
		for _, m := range mechs {
			fmt.Printf("%12d", pt.Results[m].Cycles)
		}
		fmt.Println()
	}
}
