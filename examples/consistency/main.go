// Consistency: exercise the two memory-system extensions beyond the
// paper's Alewife baseline — write-buffered release consistency (the
// latency-tolerance technique Section 2 discusses but Alewife lacked)
// and a write-through update protocol (an ablation of Section 5.1's
// invalidation-volume argument) — on EM3D shared memory.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/mem"
)

func main() {
	log.SetFlags(0)

	run := func(label string, mutate func(*repro.MachineConfig), lat int64) int64 {
		cfg := repro.DefaultMachine()
		cfg.IdealNetOneWayCycles = lat
		if mutate != nil {
			mutate(&cfg)
		}
		res, err := repro.Run(repro.Config{
			App: repro.EM3D, Mechanism: repro.SM,
			Scale: repro.ScaleSweep, Machine: cfg, SkipValidate: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Cycles
	}

	fmt.Println("EM3D / shared memory under memory-system variants")
	fmt.Println("(uniform-latency network; runtimes in processor cycles)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %12s\n", "variant", "lat=15", "lat=100", "lat=200")
	for _, v := range []struct {
		label  string
		mutate func(*repro.MachineConfig)
	}{
		{"sequential consistency", nil},
		{"release consistency", func(c *repro.MachineConfig) { c.Mem.Consistency = mem.RC }},
		{"update protocol", func(c *repro.MachineConfig) { c.Mem.Protocol = mem.ProtocolUpdate }},
	} {
		fmt.Printf("%-28s %12d %12d %12d\n", v.label,
			run(v.label, v.mutate, 15), run(v.label, v.mutate, 100), run(v.label, v.mutate, 200))
	}
	fmt.Println()
	fmt.Println("Release consistency shaves the store stalls (reads still block — the")
	fmt.Println("benefit grows with latency but stays modest, echoing Holt et al.).")
	fmt.Println("The update protocol loses on EM3D: every store to a shared line pays a")
	fmt.Println("write-through round trip, the classic update-protocol pathology.")
}
