// Bisection: reproduce the Figure 8 experiment for one application —
// inject I/O cross-traffic to emulate machines with lower bisection
// bandwidth, and find the shared-memory / message-passing crossover.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	app := repro.EM3D
	mechs := []repro.Mechanism{repro.SM, repro.SMPrefetch, repro.MPPoll}
	fmt.Printf("Bisection sweep for %s (cross-traffic emulation, 64-byte messages)\n\n", app)

	pts, err := repro.BisectionSweep(app, mechs, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s", "bisection (bytes/cyc)")
	for _, m := range mechs {
		fmt.Printf("%12s", m.Short())
	}
	fmt.Println()
	for _, pt := range pts {
		fmt.Printf("%-22.1f", pt.X)
		for _, m := range mechs {
			fmt.Printf("%12d", pt.Results[m].Cycles)
		}
		fmt.Println()
	}

	if x, ok := repro.Crossover(pts, repro.SM, repro.MPPoll); ok {
		fmt.Printf("\nshared memory crosses message passing at ~%.1f bytes/cycle\n", x)
		fmt.Println("(Alewife sits at 18; the paper notes DASH- and FLASH-class meshes approach the crossover)")
	} else {
		fmt.Println("\nno crossover in the swept range")
	}
}
