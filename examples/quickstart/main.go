// Quickstart: run one application under two communication mechanisms on
// the simulated Alewife and compare the paper's headline measurements.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	log.SetFlags(0)

	fmt.Println("EM3D on the 32-node simulated Alewife (tiny workload):")
	fmt.Println()

	var smCycles int64
	for _, mech := range []repro.Mechanism{repro.SM, repro.MPPoll} {
		res, err := repro.Run(repro.Config{
			App:       repro.EM3D,
			Mechanism: mech,
			Scale:     repro.ScaleTiny,
		})
		if err != nil {
			log.Fatal(err)
		}
		if mech == repro.SM {
			smCycles = res.Cycles
		}
		fmt.Printf("%-14s %8d cycles   volume %7d bytes   remote misses %5d   messages %5d\n",
			mech, res.Cycles, res.Volume.Total(),
			res.Events.RemoteMisses(), res.Events.MessagesSent)
	}

	res, err := repro.Run(repro.Config{App: repro.EM3D, Mechanism: repro.MPPoll, Scale: repro.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSM/MP runtime ratio at native bandwidth: %.2fx\n",
		float64(smCycles)/float64(res.Cycles))
	fmt.Println("(every run above was validated against the sequential reference)")
}
