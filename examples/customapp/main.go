// Customapp: write a new parallel program against the simulator's
// processor API and compare shared memory with message passing on it.
//
// The program is a token ring with per-hop work: each processor computes,
// then passes a counter to its right neighbor; the token circles the
// machine R times. It is deliberately latency-bound, so the two
// mechanisms differ by their communication round-trip structure — shared
// memory pays a protocol round trip per hop while an active message pays
// a single pass, the core distinction of the paper's Section 2.
package main

import (
	"fmt"
	"log"

	"repro/internal/am"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/stats"
)

const (
	rounds       = 8
	workPerHop   = 50 // cycles of computation when holding the token
	totalPerProc = rounds
)

func main() {
	log.SetFlags(0)
	smCycles := runSharedMemory()
	mpCycles := runMessagePassing()
	fmt.Printf("token ring, %d rounds on 32 nodes, %d cycles of work per hop\n", rounds, workPerHop)
	fmt.Printf("  shared memory:   %7d cycles (spin on neighbor's slot; round trips per hop)\n", smCycles)
	fmt.Printf("  active messages: %7d cycles (one-way handoff per hop)\n", mpCycles)
	fmt.Printf("  one-way messaging wins by %.2fx on this latency-bound pattern\n",
		float64(smCycles)/float64(mpCycles))
}

// runSharedMemory passes the token through per-processor mailbox words:
// each processor spins on its own mailbox, then writes its neighbor's.
func runSharedMemory() int64 {
	m := machine.New(machine.DefaultConfig())
	n := m.Cfg.Nodes()
	boxes := make([]mem.Addr, n)
	for i := range boxes {
		boxes[i] = m.Alloc(i, 2)
	}
	m.Store.Poke(boxes[0], 1) // round tag: proc p waits for value round+1... start at 1
	res := m.Run(func(p *machine.Proc) {
		for r := 1; r <= rounds; r++ {
			// Wait for the token (tagged with the round number).
			for p.ReadSync(boxes[p.ID]) < float64(r) {
				p.SpinCycles(30)
			}
			p.Compute(workPerHop)
			next := (p.ID + 1) % n
			tag := r
			if next == 0 {
				tag = r + 1 // the wrap starts the next round
			}
			p.Write(boxes[next], float64(tag))
		}
	})
	return res.Cycles
}

// runMessagePassing passes the token as an active message.
func runMessagePassing() int64 {
	m := machine.New(machine.DefaultConfig())
	n := m.Cfg.Nodes()
	got := make([]int, n) // rounds received per node
	var tokenH am.HandlerID
	tokenH = m.AM.Register(func(c *am.Ctx, args []int64, vals []float64) {
		got[c.Node]++
	})
	res := m.Run(func(p *machine.Proc) {
		p.SetRecvMode(machine.RecvPoll)
		if p.ID == 0 {
			got[0] = 1 // holds the initial token
		}
		for r := 1; r <= rounds; r++ {
			for got[p.ID] < r {
				p.WaitAndHandle()
			}
			p.Compute(workPerHop)
			p.Send((p.ID+1)%n, tokenH, nil, nil)
		}
		// Drain the final wrap-around message so the machine quiesces.
		if p.ID == 0 && got[0] <= rounds {
			p.WaitAndHandle()
		}
	})
	_ = stats.BucketSync
	return res.Cycles
}
