// Machinetour: place the paper's Table 1 machines on the measured
// sensitivity curves — which published designs sit near the shared-memory
// / message-passing crossover the paper warns about?
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/machines"
)

// kneeAt interpolates the X at which SM runtime reaches ratio times its
// native (first-point) value, scanning from high bandwidth down.
func kneeAt(pts []repro.SweepPoint, ratio float64) float64 {
	base := float64(pts[0].Results[repro.SM].Cycles)
	for i := 1; i < len(pts); i++ {
		r0 := float64(pts[i-1].Results[repro.SM].Cycles) / base
		r1 := float64(pts[i].Results[repro.SM].Cycles) / base
		if r1 >= ratio && r0 < ratio {
			frac := (ratio - r0) / (r1 - r0)
			return pts[i-1].X + frac*(pts[i].X-pts[i-1].X)
		}
	}
	return pts[len(pts)-1].X
}

func main() {
	log.SetFlags(0)

	fmt.Println("Where do the Table 1 machines fall on the bisection-sensitivity curve?")
	fmt.Println("(sweep measured on the simulated Alewife, EM3D; bandwidth in bytes/cycle)")
	fmt.Println()

	pts, err := repro.BisectionSweep(repro.EM3D,
		[]repro.Mechanism{repro.SM, repro.MPPoll}, nil)
	if err != nil {
		log.Fatal(err)
	}
	crossover, found := repro.Crossover(pts, repro.SM, repro.MPPoll)
	if found {
		fmt.Printf("measured SM/MP crossover: %.1f bytes/cycle\n\n", crossover)
	} else {
		// No crossover at our baselines (see EXPERIMENTS.md divergence
		// D1); use the knee where shared memory has lost 25% instead.
		crossover = kneeAt(pts, 1.25)
		fmt.Printf("no SM/MP crossover in range; using the bandwidth where shared\n")
		fmt.Printf("memory has slowed 25%%: %.1f bytes/cycle\n\n", crossover)
	}

	rows := machines.Table1()
	sort.Slice(rows, func(i, j int) bool {
		bi, bj := rows[i].BytesPerCycle, rows[j].BytesPerCycle
		if bi == machines.NA {
			bi = -1
		}
		if bj == machines.NA {
			bj = -1
		}
		return bi < bj
	})
	fmt.Printf("%-16s %14s %18s\n", "machine", "bytes/cycle", "vs crossover")
	for _, m := range rows {
		if m.BytesPerCycle == machines.NA {
			fmt.Printf("%-16s %14s %18s\n", m.Name, "N/A", "-")
			continue
		}
		verdict := "comfortable"
		switch {
		case m.BytesPerCycle < crossover:
			verdict = "BELOW crossover"
		case m.BytesPerCycle < 2*crossover:
			verdict = "approaching"
		}
		fmt.Printf("%-16s %14.1f %18s\n", m.Name, m.BytesPerCycle, verdict)
	}

	fmt.Println("\nNetwork latency relative to Alewife's 15 cycles (Figures 9/10 axis):")
	for _, m := range machines.Table1() {
		if m.NetLatency == machines.NA {
			continue
		}
		fmt.Printf("  %-16s %5.0f cycles (%.1fx Alewife)\n", m.Name, m.NetLatency, m.RelNetLatency())
	}
	fmt.Println("\nThe paper's conclusion: most machines have bisection headroom, but")
	fmt.Println("network latency is the severe problem for shared memory — every modern")
	fmt.Println("machine in the table has considerably higher latency than Alewife.")
}
